// Synthesisflow runs the full multi-pass synthesis script (sweep,
// simplify, cube extraction, kernel extraction, eliminate) on a
// generated dalu-class benchmark and prints the per-phase timing
// profile — the Table 1 experiment at example scale, showing that
// algebraic factorization dominates synthesis time.
package main

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/rect"
	"repro/internal/script"
)

func main() {
	nw, err := gen.Benchmark("dalu")
	if err != nil {
		panic(err)
	}
	fmt.Println("circuit:", nw)

	res := script.Run(nw, script.Options{
		Rect:   rect.Config{MaxCols: 5, MaxVisits: 100000},
		BatchK: 16,
	})

	fmt.Printf("\nliteral count: %d -> %d (%.1f%% of initial)\n",
		res.InitialLC, res.FinalLC, 100*float64(res.FinalLC)/float64(res.InitialLC))
	fmt.Printf("passes: %d, factorization invoked %d times\n\n", res.Passes, res.FacInvocations)

	fmt.Printf("%-10s %12s %10s\n", "phase", "wall", "work")
	agg := map[string]script.PhaseTiming{}
	var order []string
	for _, ph := range res.Phases {
		a, ok := agg[ph.Name]
		if !ok {
			order = append(order, ph.Name)
		}
		a.Name = ph.Name
		a.Wall += ph.Wall
		a.Work += ph.Work
		agg[ph.Name] = a
	}
	for _, name := range order {
		a := agg[name]
		fmt.Printf("%-10s %12v %10d\n", a.Name, a.Wall.Round(1e5), a.Work)
	}
	fmt.Printf("\nfactorization share: %.1f%% of wall time\n",
		100*res.FacWall.Seconds()/res.TotalWall.Seconds())
	fmt.Println("(the paper's Table 1 measures 61.45% on its MCNC suite)")
}
