// Paperexample walks through the worked examples of the paper on the
// Eq. 1 network:
//
//   - the co-kernel cube matrix of the 2-way partition (Figure 2),
//   - the greedy kernel-cube ownership and the exchanged B_ij blocks
//     forming the L-shaped matrices with offset labels (Example 5.1,
//     Figures 3 and 4),
//   - independent partitioned extraction losing quality by
//     duplicating a+b (Example 4.1), and
//   - the Example 5.2 consistency scenario with the zero-cost
//     profitability check.
package main

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/lshape"
	"repro/internal/network"
	"repro/internal/sop"
)

func main() {
	nw := network.PaperExample()
	names := nw.Names
	fmt.Println("Network N of Example 1.1:")
	for _, v := range nw.NodeVars() {
		fmt.Printf("  %s = %s\n", names.Name(v), nw.Node(v).Fn.Format(names.Fmt()))
	}
	fmt.Printf("  literal count: %d\n\n", nw.Literals())

	// ---- Figure 2: the KC matrix of the partition {F} | {G,H} ----
	F, _ := names.Lookup("F")
	G, _ := names.Lookup("G")
	H, _ := names.Lookup("H")
	parts := [][]sop.Var{{G, H}, {F}}
	mats := lshape.BuildMatrices(nw, parts, kernels.Options{})
	fmt.Println("Partitioned co-kernel cube matrices (Figure 2; processor offsets of §5.2):")
	fmt.Println("-- processor 0 (nodes G, H) --")
	fmt.Print(mats[0].Dump(names))
	fmt.Println("-- processor 1 (node F) --")
	fmt.Print(mats[1].Dump(names))
	fmt.Println()

	// ---- Example 5.1: cube ownership ----
	own := lshape.Distribute(mats)
	fmt.Println("Cube ownership after Distribute_cube_ownership (Example 5.1):")
	for p, cubes := range own.LocalCubes {
		fmt.Printf("  local_cubes[%d] =", p)
		for _, c := range cubes {
			fmt.Printf(" %s(%d)", c.Format(names.Fmt()), own.GlobalID[c.Key()])
		}
		fmt.Println()
	}
	fmt.Println()

	// ---- Figures 3/4: the L-shaped matrices ----
	ls, exch := lshape.Assemble(mats, own)
	for _, l := range ls {
		fmt.Printf("L-shaped matrix of processor %d (own rows + foreign rows in owned columns):\n", l.Proc)
		fmt.Print(l.M.Dump(names))
	}
	fmt.Printf("exchanged B_ij entries: proc1->proc0 %d, proc0->proc1 %d\n\n",
		exch.Words[1][0], exch.Words[0][1])

	// ---- Example 4.1: independent partitions duplicate a+b ----
	indep := network.PaperExample()
	core.Partitioned(context.Background(), indep, 2, core.Options{})
	fmt.Printf("Independent partitioned extraction (Example 4.1): LC %d (SIS reaches 22)\n",
		indep.Literals())
	for _, v := range indep.NodeVars() {
		fmt.Printf("  %s = %s\n", indep.Names.Name(v), indep.Node(v).Fn.Format(indep.Names.Fmt()))
	}
	fmt.Println()

	// ---- §5: the L-shaped run recovers the shared kernel ----
	lnet := network.PaperExample()
	core.LShaped(context.Background(), lnet, 2, core.Options{})
	fmt.Printf("L-shaped parallel extraction: LC %d\n", lnet.Literals())
	for _, v := range lnet.NodeVars() {
		fmt.Printf("  %s = %s\n", lnet.Names.Name(v), lnet.Node(v).Fn.Format(lnet.Names.Fmt()))
	}
	fmt.Println()

	// ---- Table 5: the cube state machine ----
	fmt.Println("Cube states during concurrent extraction (Table 5):")
	st := core.NewStateTable()
	fmt.Printf("  cube 42 initially: %s (value %d to anyone)\n",
		st.State(42), st.Value(1, 42, 5))
	st.Cover(0, []int64{42}, []int{5})
	fmt.Printf("  after processor 0 covers it: %s (owner sees %d, others %d)\n",
		st.State(42), st.Value(0, 42, 5), st.Value(1, 42, 5))
	st.Divide([]int64{42})
	fmt.Printf("  after division: %s (worth %d to everyone)\n",
		st.State(42), st.Value(0, 42, 5))
}
