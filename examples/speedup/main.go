// Speedup compares the paper's three parallel algorithms on one
// generated benchmark across processor counts, and checks the
// L-shaped measurements against the Equation 3 analytic model with
// sparsity factors measured from the actual matrices.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/rect"
	"repro/internal/tables"
)

func main() {
	bench := flag.String("bench", "dalu", "benchmark name")
	flag.Parse()

	opt := core.Options{
		Rect:   rect.Config{MaxCols: 5, MaxVisits: 100000},
		BatchK: 16,
	}
	nw, err := gen.Benchmark(*bench)
	if err != nil {
		panic(err)
	}
	initial := nw.Literals()
	base := core.Sequential(context.Background(), nw, opt)
	fmt.Printf("%s: initial LC %d; sequential LC %d, virtual time %d\n\n",
		*bench, initial, base.LC, base.VirtualTime)

	fmt.Printf("%4s | %22s | %22s | %22s\n", "p",
		"replicated  LC      S", "partitioned LC      S", "lshaped     LC      S")
	replOpt := opt
	replOpt.BatchK = 1
	replOpt.Rect.MaxVisits = 20000
	for _, p := range []int{1, 2, 4, 6} {
		r1, _ := gen.Benchmark(*bench)
		repl := core.Replicated(context.Background(), r1, p, replOpt)
		r2, _ := gen.Benchmark(*bench)
		part := core.Partitioned(context.Background(), r2, p, opt)
		r3, _ := gen.Benchmark(*bench)
		lsh := core.LShaped(context.Background(), r3, p, opt)
		fmt.Printf("%4d | %14d %7.2f | %14d %7.2f | %14d %7.2f\n", p,
			repl.LC, core.Speedup(base, repl),
			part.LC, core.Speedup(base, part),
			lsh.LC, core.Speedup(base, lsh))
	}

	fmt.Println("\nEquation 3 model vs measured L-shaped speedup:")
	h := tables.New(tables.Config{Circuits: []string{*bench}, Procs: []int{2, 4, 6}, Opt: opt})
	tables.FprintModelTable(os.Stdout, *bench, h.SpeedupModelTable(*bench))
}
