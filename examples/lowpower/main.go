// Lowpower demonstrates the paper's concluding extension: driving the
// rectangle cover with switching-activity weights instead of literal
// counts, so kernel extraction minimizes estimated switched
// capacitance. It compares area-driven and power-driven extraction on
// the same generated circuit.
package main

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/kernels"
	"repro/internal/power"
	"repro/internal/rect"
)

func main() {
	rc := rect.Config{MaxCols: 5, MaxVisits: 50000}

	// Area-driven extraction (the paper's objective).
	areaNet, err := gen.Benchmark("misex3")
	if err != nil {
		panic(err)
	}
	act0, _ := power.Compute(areaNet, 0.5)
	costBefore := power.NetworkActivityCost(areaNet, act0)
	lcBefore := areaNet.Literals()
	core.Sequential(context.Background(), areaNet, core.Options{Rect: rc, BatchK: 16})
	actA, _ := power.Compute(areaNet, 0.5)
	fmt.Printf("area-driven:  LC %5d -> %5d, activity cost %.1f -> %.1f\n",
		lcBefore, areaNet.Literals(), costBefore,
		power.NetworkActivityCost(areaNet, actA))

	// Power-driven extraction: same engine, activity-weighted
	// rectangle values.
	powNet, _ := gen.Benchmark("misex3")
	res, err := power.Extract(powNet, kernels.Options{}, rc, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("power-driven: LC %5d -> %5d, activity cost %.1f -> %.1f (%d kernels)\n",
		res.LCBefore, res.LCAfter, res.ActivityBefore, res.ActivityAfter, res.Extracted)

	fmt.Println("\nBoth runs use the same rectangular-cover engine; only the Valuer")
	fmt.Println("differs — exactly the generality the paper's conclusion claims.")
	fmt.Println("With uniform input probabilities the two objectives are strongly")
	fmt.Println("correlated, so the results are close; skewed signal statistics")
	fmt.Println("separate them further.")
}
